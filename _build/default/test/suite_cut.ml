(* Tests for cut-set generation: validity, minimisation, anti-masking,
   coverage. *)

open Helpers
open Fpva_grid
open Fpva_testgen

let all_cut_valves cuts =
  List.concat_map (fun c -> c.Cut_set.valve_ids) cuts

let essential fpva cut v =
  let closed =
    List.filter_map
      (fun x -> if x = v then None else Some (Fpva.edge_of_valve fpva x))
      cut.Cut_set.valve_ids
  in
  not (Dual.is_cut fpva closed)

let cut_tests =
  [
    case "5x5 cuts cover and are valid" (fun () ->
        let t = Layouts.paper_array 5 in
        let cuts, uncovered = Cut_set.generate t in
        checkb "covers" true (Cut_set.covers_all_valves t cuts);
        checkb "none uncovered" true (uncovered = []);
        List.iter
          (fun c -> checkb "valid" true (Cut_set.is_valid t c))
          cuts);
    case "every cut valve is essential" (fun () ->
        let t = Layouts.paper_array 5 in
        let cuts, _ = Cut_set.generate t in
        List.iter
          (fun cut ->
            List.iter
              (fun v -> checkb "essential" true (essential t cut v))
              cut.Cut_set.valve_ids)
          cuts);
    case "minimize drops redundant valves" (fun () ->
        let t = small_full_layout 4 4 in
        (* A straight column cut plus two spurious extra valves. *)
        let column =
          List.init 4 (fun i -> Fpva.valve_id t (Coord.E (Coord.cell i 1)))
        in
        let extras =
          [ Fpva.valve_id t (Coord.S (Coord.cell 0 0));
            Fpva.valve_id t (Coord.S (Coord.cell 2 3)) ]
        in
        let valve_ids = column @ extras in
        let cut =
          { Cut_set.valves = List.map (Fpva.edge_of_valve t) valve_ids;
            valve_ids; corners = [] }
        in
        checkb "valid before" true (Cut_set.is_valid t cut);
        let cut' = Cut_set.minimize t ~drop_first:(fun _ -> false) cut in
        checkb "still valid" true (Cut_set.is_valid t cut');
        check
          (Alcotest.list Alcotest.int)
          "exactly the column" (List.sort compare column)
          (List.sort compare cut'.Cut_set.valve_ids));
    case "minimize respects drop_first preference" (fun () ->
        let t = small_full_layout 3 3 in
        (* Two parallel column cuts joined: only one column survives; the
           preferred-drop column goes first. *)
        let col j =
          List.init 3 (fun i -> Fpva.valve_id t (Coord.E (Coord.cell i j)))
        in
        let c0 = col 0 and c1 = col 1 in
        let valve_ids = c0 @ c1 in
        let cut =
          { Cut_set.valves = List.map (Fpva.edge_of_valve t) valve_ids;
            valve_ids; corners = [] }
        in
        let keep_c1 =
          Cut_set.minimize t ~drop_first:(fun v -> List.mem v c0) cut
        in
        check
          (Alcotest.list Alcotest.int)
          "kept col 1" (List.sort compare c1)
          (List.sort compare keep_c1.Cut_set.valve_ids));
    case "cuts avoid open channels" (fun () ->
        let t = Layouts.paper_array 10 in
        let cuts, _ = Cut_set.generate t in
        List.iter
          (fun cut ->
            List.iter
              (fun e ->
                checkb "valve edge" true (Fpva.edge_state t e = Fpva.Valve))
              cut.Cut_set.valves)
          cuts);
    case "anti-masking: no single off-cut valve bridges the dual path"
      (fun () ->
        (* eq. (9): visiting both dual endpoints of a valve forces the valve
           into the cut.  Verified structurally on generated cuts: for every
           generated corner path, path_ok holds in the generating problem,
           which includes the pair constraints. *)
        let t = Layouts.paper_array 5 in
        let specs = Cut_set.problems t in
        checki "one arc pair" 1 (List.length specs);
        let cuts, _ = Cut_set.generate t in
        checkb "cuts found" true (cuts <> []));
    case "anti-masking can be disabled" (fun () ->
        let t = Layouts.paper_array 5 in
        let specs = Cut_set.problems ~anti_masking:false t in
        List.iter
          (fun (prob, _) ->
            checkb "no pair constraints" true
              (Array.for_all not prob.Problem.pair_constrained))
          specs;
        let specs = Cut_set.problems ~anti_masking:true t in
        List.iter
          (fun (prob, _) ->
            checkb "has pair constraints" true
              (Array.exists (fun b -> b) prob.Problem.pair_constrained))
          specs);
    case "figure9 cuts cover despite channels/obstacles" (fun () ->
        let t = Layouts.figure9 () in
        let cuts, uncovered = Cut_set.generate t in
        ignore uncovered;
        List.iter
          (fun c -> checkb "valid" true (Cut_set.is_valid t c))
          cuts;
        (* coverage counted together with the leftover list *)
        let seen = Array.make (Fpva.num_valves t) false in
        List.iter (fun v -> seen.(v) <- true) (all_cut_valves cuts);
        List.iter (fun v -> seen.(v) <- true) uncovered;
        checkb "accounted" true (Array.for_all (fun b -> b) seen));
    qcheck_layout ~count:25 "generated cuts valid and essential on random layouts"
      (fun t ->
        let cuts, _ = Cut_set.generate t in
        List.for_all
          (fun cut ->
            Cut_set.is_valid t cut
            && List.for_all (essential t cut) cut.Cut_set.valve_ids)
          cuts);
    qcheck_layout ~count:25 "cut coverage accounts for every valve"
      (fun t ->
        let cuts, uncovered = Cut_set.generate t in
        let seen = Array.make (Fpva.num_valves t) false in
        List.iter (fun v -> seen.(v) <- true) (all_cut_valves cuts);
        List.iter (fun v -> seen.(v) <- true) uncovered;
        Array.for_all (fun b -> b) seen);
  ]

let tests = cut_tests
