(* fpva — command-line front end for FPVA test generation.

   Subcommands:
     show      render a layout
     generate  build the full test suite for a layout, optionally rendering
               the flow paths / cut-sets
     campaign  generate a suite and run a random fault-injection campaign
     diagnose  build a diagnostic dictionary / diagnose an injected fault
               (fixed-suite replay, or adaptively with --sequential)
     lifetime  field a fleet of aging chips with periodic in-field retests
     serve     run the persistent test service daemon
     client    send one request to a running daemon

   Exit codes (stable; scripts and CI depend on them):
     0  success
     1  internal error (unexpected exception — a bug, not bad input)
     2  invalid input (bad flag value, malformed layout, unknown class)
     3  degraded result rejected under --strict (budget ran out or the
        suite failed self-checks)
   Cmdliner additionally uses 124 (CLI parse error) and 125. *)

open Cmdliner
open Fpva_grid
open Fpva_testgen

let exit_internal = 1
let exit_invalid = 2
let exit_strict = 3

(* Invalid input discovered mid-run (e.g. a checkpoint file that refuses
   to resume this campaign), raised so enclosing cleanups — notably the
   trace flush in [with_observability] — still run before the exit-2. *)
exception Invalid_input of string

let invalid_input fmt =
  Printf.ksprintf (fun msg -> raise (Invalid_input msg)) fmt

(* Anything [run] throws past argument validation is a bug in the tool,
   not a usage error: report it on one line and exit 1, distinguishable
   from both invalid input (2) and strict degradation (3). *)
let guard_internal run =
  try run () with
  | Invalid_input msg ->
    prerr_endline ("error: " ^ msg);
    exit exit_invalid
  | e ->
    prerr_endline ("internal error: " ^ Printexc.to_string e);
    exit exit_internal

(* ---------- layout selection ---------- *)

let make_layout name rows cols =
  match name with
  | "full" -> Ok (Layouts.full ~rows ~cols)
  | "paper" ->
    if rows <> cols then Error "paper layout requires a square array"
    else Ok (Layouts.paper_array rows)
  | "figure8" -> Ok (Layouts.figure8 ())
  | "figure9" -> Ok (Layouts.figure9 ())
  | other -> Error (Printf.sprintf "unknown layout %S" other)

let load_layout_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Parse.parse text with
  | Ok fpva -> (
    match Fpva.validate fpva with
    | Ok () -> Ok fpva
    | Error msg -> Error (Printf.sprintf "%s: invalid layout: %s" path msg))
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)

let layout_t =
  let doc = "Layout family: full | paper | figure9." in
  Arg.(value & opt string "paper" & info [ "layout" ] ~docv:"NAME" ~doc)

let rows_t =
  let doc = "Number of rows (and columns unless --cols is given)." in
  Arg.(value & opt int 10 & info [ "n"; "rows" ] ~docv:"N" ~doc)

let cols_t =
  let doc = "Number of columns (defaults to --rows)." in
  Arg.(value & opt (some int) None & info [ "cols" ] ~docv:"N" ~doc)

let file_t =
  let doc = "Read the layout from an ASCII file (same format as `show` \
             prints) instead of generating one." in
  Arg.(value & opt (some file) None & info [ "layout-file" ] ~docv:"FILE" ~doc)

let resolve_layout ~file name rows cols =
  let result =
    match file with
    | Some path -> load_layout_file path
    | None ->
      let cols = Option.value cols ~default:rows in
      make_layout name rows cols
  in
  match result with
  | Ok fpva -> fpva
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    exit 2

(* ---------- show ---------- *)

let show_cmd =
  let run name rows cols file =
    guard_internal @@ fun () ->
    let fpva = resolve_layout ~file name rows cols in
    Printf.printf "%dx%d array, %d valves, %d ports\n\n" (Fpva.rows fpva)
      (Fpva.cols fpva) (Fpva.num_valves fpva)
      (Array.length (Fpva.ports fpva));
    print_endline (Render.plain fpva)
  in
  let term = Term.(const run $ layout_t $ rows_t $ cols_t $ file_t) in
  Cmd.v (Cmd.info "show" ~doc:"Render an FPVA layout as ASCII art.") term

(* ---------- generate ---------- *)

let direct_t =
  let doc = "Use the direct (non-hierarchical) flow-path model." in
  Arg.(value & flag & info [ "direct" ] ~doc)

let block_t =
  let doc = "Subblock dimension for the hierarchical model." in
  Arg.(value & opt int 5 & info [ "block" ] ~docv:"B" ~doc)

let no_leak_t =
  let doc = "Skip control-leakage vector generation." in
  Arg.(value & flag & info [ "no-leakage" ] ~doc)

let routing_t =
  let doc =
    "Control-layer routing for leakage pairs: fluid | row | column."
  in
  Arg.(value & opt string "fluid" & info [ "routing" ] ~docv:"R" ~doc)

let routing_of = function
  | "fluid" -> Control.Fluid_adjacency
  | "row" -> Control.Row_manifold
  | "column" | "col" -> Control.Column_manifold
  | other ->
    prerr_endline (Printf.sprintf "error: unknown routing %S" other);
    exit 2

let render_t =
  let doc = "Render the flow paths (and each cut-set) after generating." in
  Arg.(value & flag & info [ "render" ] ~doc)

let config_of ?(routing = "fluid") ~direct ~block ~no_leak () =
  { Pipeline.default_config with
    Pipeline.hierarchical = not direct;
    block_rows = block;
    block_cols = block;
    include_leakage = not no_leak;
    leak_routing = routing_of routing }

let output_t =
  let doc = "Write the generated suite to FILE (fpva-suite format)." in
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc)

let sequence_t =
  let doc = "Reorder the vectors to minimise valve switching and report \
             the saving." in
  Arg.(value & flag & info [ "sequence" ] ~doc)

let time_limit_t =
  let doc = "Wall-clock budget in seconds for the whole pipeline.  Stages \
             share it (flow half, cut-sets 60% of the rest, leakage the \
             remainder); on exhaustion generation stops early and the \
             partial suite is reported with its degradation." in
  Arg.(
    value & opt (some float) None & info [ "time-limit" ] ~docv:"SECONDS" ~doc)

let strict_t =
  let doc = "Exit with status 3 when the result degraded: generation fell \
             back or stopped early, the suite fails self-checks, or (for \
             campaign) budget exhaustion truncated rows.  Without this \
             flag a degraded-but-well-formed result exits 0." in
  Arg.(value & flag & info [ "strict" ] ~doc)

(* ---------- observability ---------- *)

let trace_t =
  let doc =
    "Write line-delimited JSON trace events (pipeline stages, solver \
     spans, campaign shards) to FILE."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_t =
  let doc =
    "Print the collected counters and gauges (simplex pivots, B&B nodes, \
     campaign throughput, ...) after the run."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Enable tracing around [f] when asked; otherwise [f] runs with tracing
   off, i.e. with zero overhead and bit-identical results.  Call this only
   after argument validation — [exit] inside [f] would skip the flush. *)
let with_observability ~trace ~metrics f =
  if trace = None && not metrics then f ()
  else begin
    let oc = Option.map open_out trace in
    let sinks =
      match oc with
      | Some oc -> [ Fpva_util.Trace.json_sink oc ]
      | None -> []
    in
    Fpva_util.Trace.enable ~sinks ();
    Fun.protect
      ~finally:(fun () ->
        Fpva_util.Trace.disable ();
        Option.iter close_out oc;
        if metrics then print_string (Fpva_util.Trace.metrics_summary ()))
      f
  end

let generate_cmd =
  let run name rows cols file direct block no_leak routing render sequence
      output time_limit strict trace metrics =
    guard_internal @@ fun () ->
    let fpva = resolve_layout ~file name rows cols in
    let config = config_of ~routing ~direct ~block ~no_leak () in
    let budget =
      match time_limit with
      | Some s -> Budget.of_seconds s
      | None -> Budget.unlimited
    in
    let strict_failure =
      with_observability ~trace ~metrics (fun () ->
          let result =
            match Pipeline.run ~config ~budget fpva with
            | Ok result -> result
            | Error msg ->
              prerr_endline ("error: invalid layout: " ^ msg);
              exit 2
          in
          print_endline (Report.summary result);
          print_endline (Report.degradation_summary result);
          let ok = Pipeline.suite_ok result in
          if not ok then print_endline "WARNING: suite failed self-checks";
          if Pipeline.degraded result then
            print_endline "WARNING: generation degraded (see per-stage report)";
          if sequence then begin
            let before, after =
              Sequencer.improvement fpva result.Pipeline.vectors
            in
            Printf.printf
              "switching cost: %d actuations in generation order, %d after \
               reordering (%.0f%% saved)\n"
              before after
              (100.0
              *. float_of_int (before - after)
              /. float_of_int (max before 1))
          end;
          (match output with
          | Some path ->
            Suite_io.write_file path fpva result.Pipeline.vectors;
            Printf.printf "suite written to %s\n" path
          | None -> ());
          if render then begin
            print_endline "\nFlow paths (digit = 1-based path index mod 10):";
            print_endline (Report.render_flow_paths fpva result.Pipeline.flow);
            List.iteri
              (fun i cut ->
                Printf.printf "\nCut-set %d:\n" (i + 1);
                print_endline (Report.render_cut fpva cut))
              result.Pipeline.cuts
          end;
          strict && (Pipeline.degraded result || not ok))
    in
    if strict_failure then exit exit_strict
  in
  let term =
    Term.(
      const run $ layout_t $ rows_t $ cols_t $ file_t $ direct_t $ block_t
      $ no_leak_t $ routing_t $ render_t $ sequence_t $ output_t
      $ time_limit_t $ strict_t $ trace_t $ metrics_t)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate the complete test-vector suite.")
    term

(* ---------- campaign ---------- *)

let trials_t =
  let doc = "Trials per fault count." in
  Arg.(value & opt int 10_000 & info [ "trials" ] ~docv:"K" ~doc)

let seed_t =
  let doc = "Campaign RNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc)

let max_faults_t =
  let doc = "Inject 1..M simultaneous faults." in
  Arg.(value & opt int 5 & info [ "max-faults" ] ~docv:"M" ~doc)

let classes_t =
  let doc =
    "Fault classes to draw from, comma-separated: sa0, sa1, leak."
  in
  Arg.(value & opt string "sa0,sa1" & info [ "classes" ] ~docv:"LIST" ~doc)

let parse_classes spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "empty class list"
  else
    List.fold_left
      (fun acc name ->
        match (acc, name) with
        | Error _, _ -> acc
        | Ok cs, "sa0" -> Ok (cs @ [ `Stuck_at_0 ])
        | Ok cs, "sa1" -> Ok (cs @ [ `Stuck_at_1 ])
        | Ok cs, "leak" -> Ok (cs @ [ `Control_leak ])
        | Ok _, other ->
          Error (Printf.sprintf "unknown fault class %S (want sa0|sa1|leak)" other))
      (Ok []) parts

let noise_t =
  let doc =
    "Per-meter error rate (false-pass and false-fail) for noisy test \
     application."
  in
  Arg.(value & opt float 0.0 & info [ "noise" ] ~docv:"RATE" ~doc)

let repeats_t =
  let doc =
    "Per-vector read budget for adaptive majority-vote retesting (1 = \
     single read, the paper's ideal-observation behaviour)."
  in
  Arg.(value & opt int 1 & info [ "repeats" ] ~docv:"K" ~doc)

let jobs_t =
  let doc =
    "Domains to shard trials across (results are identical for every \
     value).  0 picks min(available cores, 8)."
  in
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let resolve_jobs jobs =
  if jobs < 0 then begin
    prerr_endline "error: --jobs must be >= 0";
    exit 2
  end
  else if jobs = 0 then Fpva_util.Pool.default_jobs ()
  else jobs

let kernel_t =
  let doc =
    "Fault-simulation kernel for the ideal campaign: $(b,batched) \
     (default) packs up to 63 trials into the bits of one machine word \
     and scores them in one masked sweep per vector; $(b,scalar) runs \
     one trial per simulation (the reference kernel).  Rows are \
     bit-identical either way."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("batched", Fpva_sim.Campaign.Batched);
             ("scalar", Fpva_sim.Campaign.Scalar) ])
        Fpva_sim.Campaign.Batched
    & info [ "kernel" ] ~docv:"KERNEL" ~doc)

(* ---------- checkpoint/resume ---------- *)

let checkpoint_t =
  let doc =
    "Journal completed work shards to FILE (crash-safe: length-prefixed \
     CRC-checked records, torn tails recovered).  With --resume an \
     existing FILE's shards are replayed instead of recomputed; the \
     results are bit-identical either way."
  in
  Arg.(
    value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let resume_t =
  let doc =
    "Resume from --checkpoint FILE if it exists (a file recorded by a \
     different layout/config/seed/suite is refused).  Without this flag \
     an existing FILE is overwritten."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

(* Open the checkpoint once the run's key is computable (the key digests
   the generated suite, so this happens after generation).  Open failures
   are the user's input being unusable, not a bug: exit 2. *)
let open_checkpoint ~checkpoint ~resume ~key =
  match checkpoint with
  | None ->
    if resume then invalid_input "--resume requires --checkpoint FILE";
    None
  | Some path -> (
    match Fpva_sim.Checkpoint.open_ ~path ~resume ~key () with
    | Ok ck -> Some ck
    | Error e ->
      invalid_input "%s" (Fpva_sim.Checkpoint.open_error_to_string e))

(* The resumed/computed split, printed after every checkpointed run — CI
   greps it to prove a resumed run actually skipped work (and actually
   had work left to do). *)
let finish_checkpoint = function
  | None -> ()
  | Some ck ->
    Printf.printf "checkpoint: resumed %d shards, computed %d\n"
      (Fpva_sim.Checkpoint.resumed_shards ck)
      (Fpva_sim.Checkpoint.recorded_shards ck);
    (match Fpva_sim.Checkpoint.failure ck with
    | Some msg ->
      Printf.eprintf
        "warning: checkpointing disabled mid-run (%s); results are \
         complete but the journal is not\n"
        msg
    | None -> ());
    Fpva_sim.Checkpoint.close ck

let campaign_cmd =
  let run name rows cols direct block no_leak trials seed max_faults classes
      noise repeats jobs kernel time_limit checkpoint resume strict trace
      metrics =
    guard_internal @@ fun () ->
    let fpva = resolve_layout ~file:None name rows cols in
    let config = config_of ~direct ~block ~no_leak () in
    let classes =
      match parse_classes classes with
      | Ok cs -> cs
      | Error msg ->
        prerr_endline ("error: " ^ msg);
        exit 2
    in
    if noise < 0.0 || noise > 1.0 then begin
      prerr_endline "error: --noise must be in [0,1]";
      exit 2
    end;
    if repeats < 1 then begin
      prerr_endline "error: --repeats must be >= 1";
      exit 2
    end;
    if resume && checkpoint = None then begin
      prerr_endline "error: --resume requires --checkpoint FILE";
      exit exit_invalid
    end;
    let jobs = resolve_jobs jobs in
    let budget =
      match time_limit with
      | Some s -> Budget.of_seconds s
      | None -> Budget.unlimited
    in
    let truncated =
      with_observability ~trace ~metrics (fun () ->
          let result = Pipeline.run_exn ~config fpva in
          print_endline (Report.summary result);
          let campaign_config =
            { Fpva_sim.Campaign.trials;
              seed;
              classes;
              fault_counts = List.init max_faults (fun i -> i + 1) }
          in
          if noise > 0.0 || repeats > 1 then begin
            let noise_config =
              { Fpva_sim.Campaign.base = campaign_config;
                noise_levels = [ noise ];
                repeats }
            in
            let ck =
              open_checkpoint ~checkpoint ~resume
                ~key:
                  (Fpva_sim.Campaign.noisy_checkpoint_key noise_config fpva
                     ~vectors:result.Pipeline.vectors)
            in
            let r =
              Fpva_sim.Campaign.run_noisy ~config:noise_config ~jobs ~budget
                ?checkpoint:ck fpva ~vectors:result.Pipeline.vectors
            in
            Format.printf "%a@?" Fpva_sim.Campaign.pp_noise_result r;
            finish_checkpoint ck;
            r.Fpva_sim.Campaign.n_truncated <> []
          end
          else begin
            let ck =
              open_checkpoint ~checkpoint ~resume
                ~key:
                  (Fpva_sim.Campaign.checkpoint_key campaign_config fpva
                     ~vectors:result.Pipeline.vectors)
            in
            let r =
              Fpva_sim.Campaign.run ~config:campaign_config ~jobs ~kernel
                ~budget ?checkpoint:ck fpva ~vectors:result.Pipeline.vectors
            in
            Format.printf "%a@?" Fpva_sim.Campaign.pp_result r;
            finish_checkpoint ck;
            r.Fpva_sim.Campaign.truncated <> []
          end)
    in
    if strict && truncated then exit exit_strict
  in
  let term =
    Term.(
      const run $ layout_t $ rows_t $ cols_t $ direct_t $ block_t $ no_leak_t
      $ trials_t $ seed_t $ max_faults_t $ classes_t $ noise_t $ repeats_t
      $ jobs_t $ kernel_t $ time_limit_t $ checkpoint_t $ resume_t $ strict_t
      $ trace_t $ metrics_t)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Generate a suite and run a random fault-injection campaign, \
          optionally under measurement noise with majority-vote retesting.")
    term

(* ---------- diagnose ---------- *)

let inject_t =
  let doc =
    "Fault to inject and diagnose: sa0:ID, sa1:ID, leak:A,B, or \
     int:P:FAULT for an intermittent fault active with probability P."
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"FAULT" ~doc)

let rec parse_fault spec =
  match String.split_on_char ':' spec with
  | [ "sa0"; v ] -> Ok (Fpva_sim.Fault.Stuck_at_0 (int_of_string v))
  | [ "sa1"; v ] -> Ok (Fpva_sim.Fault.Stuck_at_1 (int_of_string v))
  | [ "leak"; ab ] -> (
    match String.split_on_char ',' ab with
    | [ a; b ] ->
      Ok (Fpva_sim.Fault.Control_leak (int_of_string a, int_of_string b))
    | _ -> Error "leak takes A,B")
  | "int" :: p :: rest -> (
    let p = float_of_string p in
    if p < 0.0 || p > 1.0 then Error "intermittent probability outside [0,1]"
    else
      match parse_fault (String.concat ":" rest) with
      | Ok f -> Ok (Fpva_sim.Fault.Intermittent (f, p))
      | Error _ as e -> e)
  | _ -> Error "expected sa0:ID, sa1:ID, leak:A,B or int:P:FAULT"

let confidence_t =
  let doc =
    "Minimum posterior confidence for a ranked candidate to be listed; \
     with --sequential, the posterior mass at which the adaptive session \
     stops (default 0.95 under noise)."
  in
  Arg.(value & opt float 0.0 & info [ "confidence" ] ~docv:"C" ~doc)

let sequential_t =
  let doc =
    "Adaptive sequential diagnosis: read one vector at a time, each \
     chosen to maximize expected information about the surviving \
     candidates, instead of replaying the whole suite.  Without --inject, \
     sweeps every dictionary entry and reports mean reads-to-isolation \
     vs. the fixed suite."
  in
  Arg.(value & flag & info [ "sequential" ] ~doc)

let diagnose_cmd =
  let run name rows cols file direct block no_leak inject sequential noise
      repeats confidence seed jobs checkpoint resume trace metrics =
    guard_internal @@ fun () ->
    let fpva = resolve_layout ~file name rows cols in
    let config = config_of ~direct ~block ~no_leak () in
    if noise < 0.0 || noise >= 1.0 then begin
      prerr_endline "error: --noise must be in [0,1)";
      exit 2
    end;
    if repeats < 1 then begin
      prerr_endline "error: --repeats must be >= 1";
      exit 2
    end;
    if resume && checkpoint = None then begin
      prerr_endline "error: --resume requires --checkpoint FILE";
      exit exit_invalid
    end;
    let jobs = resolve_jobs jobs in
    let injected =
      match inject with
      | None -> None
      | Some spec -> (
        match parse_fault spec with
        | Ok fault -> (
          (* A well-formed spec can still name a physically impossible
             fault (out-of-range valve, non-adjacent leak pair); refuse
             it rather than silently simulating nonsense. *)
          match Fpva_sim.Fault.validate fpva fault with
          | Ok () -> Some fault
          | Error msg ->
            prerr_endline ("error: invalid fault: " ^ msg);
            exit 2)
        | Error msg ->
          prerr_endline ("error: " ^ msg);
          exit 2)
    in
    with_observability ~trace ~metrics @@ fun () ->
    let result = Pipeline.run_exn ~config fpva in
    print_endline (Report.summary result);
    let faults = Fpva_sim.Diagnosis.single_faults fpva in
    let ck =
      open_checkpoint ~checkpoint ~resume
        ~key:
          (Fpva_sim.Diagnosis.checkpoint_key fpva
             ~vectors:result.Pipeline.vectors ~faults)
    in
    let dict =
      Fpva_sim.Diagnosis.build ~jobs ?checkpoint:ck fpva
        ~vectors:result.Pipeline.vectors ~faults
    in
    finish_checkpoint ck;
    let classes = Fpva_sim.Diagnosis.equivalence_classes dict in
    Printf.printf
      "diagnostic dictionary: %d single faults, %d distinguishable classes \
       (resolution %.2f)\n"
      (List.length faults) (List.length classes)
      (Fpva_sim.Diagnosis.resolution dict);
    if sequential then begin
      let module Seq = Fpva_sim.Diagnosis.Sequential in
      let noisy = noise > 0.0 in
      let config =
        if noisy then begin
          let meter =
            Fpva_sim.Measurement.uniform fpva ~false_pass:noise
              ~false_fail:noise
          in
          { Seq.false_pass = Fpva_sim.Measurement.vector_false_pass meter;
            false_fail = Fpva_sim.Measurement.vector_false_fail meter;
            confidence = (if confidence > 0.0 then confidence else 0.95);
            max_reads = None }
        end
        else if confidence > 0.0 then { Seq.ideal with Seq.confidence }
        else Seq.ideal
      in
      let pp_stop = function
        | Seq.Isolated -> "isolated"
        | Seq.Confident -> "confident"
        | Seq.Exhausted -> "exhausted"
      in
      match injected with
      | None ->
        (* No chip under test: replay every dictionary entry against its
           own stored syndrome and report the adaptive-vs-fixed economics. *)
        let sw = Seq.sweep ~config dict in
        Printf.printf
          "sequential sweep: %d sessions, mean reads %.2f (p95 %.1f, max \
           %d) vs %d fixed; outcome classes agree: %b\n"
          sw.Seq.sessions sw.Seq.mean_reads sw.Seq.p95_reads
          sw.Seq.max_session_reads sw.Seq.fixed_reads sw.Seq.all_agree
      | Some fault ->
        let h = Fpva_sim.Simulator.make fpva in
        let read =
          if noisy || repeats > 1 then begin
            let meter =
              Fpva_sim.Measurement.uniform fpva ~false_pass:noise
                ~false_fail:noise
            in
            let rng = Fpva_util.Rng.create seed in
            let policy = Retest.policy repeats in
            fun _ v ->
              (Retest.apply policy ~read:(fun _ ->
                   Fpva_sim.Measurement.detects_h meter rng h
                     ~faults:[ fault ] v))
                .Retest.failed
          end
          else fun _ v -> Fpva_sim.Simulator.detects_h h ~faults:[ fault ] v
        in
        let o = Seq.run ~config dict ~read in
        List.iter
          (fun (s : Seq.step) ->
            Printf.printf "  read vector %d -> %s (%d candidates left)\n"
              s.Seq.vector
              (if s.Seq.failed then "fail" else "pass")
              s.Seq.survivors)
          o.Seq.steps;
        Printf.printf
          "sequential session for %s: %d reads (fixed suite %d), stop=%s, \
           class confidence %.3f\n"
          (Fpva_sim.Fault.to_string fault)
          o.Seq.reads
          (List.length result.Pipeline.vectors)
          (pp_stop o.Seq.stop) o.Seq.class_confidence;
        if o.Seq.isolated = [] then
          print_endline
            "no candidate survives (multi-fault or out of model)"
        else begin
          Printf.printf "isolated class:";
          List.iter
            (fun f -> Printf.printf " %s" (Fpva_sim.Fault.to_string f))
            o.Seq.isolated;
          print_newline ()
        end
    end
    else
    match injected with
    | None -> ()
    | Some fault -> (
        let noisy = noise > 0.0 || repeats > 1 in
        let observed =
          if noisy then begin
            (* Apply the suite through the noise model with adaptive
               retesting; the per-vector majority verdicts form the
               observed syndrome. *)
            let meter =
              Fpva_sim.Measurement.uniform fpva ~false_pass:noise
                ~false_fail:noise
            in
            let rng = Fpva_util.Rng.create seed in
            let session =
              Retest.run (Retest.policy repeats)
                ~read:(fun v _ ->
                  Fpva_sim.Measurement.detects meter rng fpva
                    ~faults:[ fault ] v)
                result.Pipeline.vectors
            in
            print_endline (Report.retest_summary session);
            Array.of_list
              (List.map
                 (fun o -> o.Retest.verdict.Retest.failed)
                 session.Retest.outcomes)
          end
          else
            Fpva_sim.Diagnosis.syndrome_of fpva
              ~vectors:result.Pipeline.vectors ~faults:[ fault ]
        in
        let failing =
          Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 observed
        in
        Printf.printf "injected %s: %d/%d vectors fail\n"
          (Fpva_sim.Fault.to_string fault)
          failing (List.length result.Pipeline.vectors);
        if noisy then begin
          let meter =
            Fpva_sim.Measurement.uniform fpva ~false_pass:noise
              ~false_fail:noise
          in
          let ranked =
            Fpva_sim.Diagnosis.rank
              ~false_pass:(Fpva_sim.Measurement.vector_false_pass meter)
              ~false_fail:(Fpva_sim.Measurement.vector_false_fail meter)
              ~limit:10 dict observed
            |> List.filter (fun r ->
                   r.Fpva_sim.Diagnosis.confidence >= confidence)
          in
          if ranked = [] then
            print_endline "no candidate clears the confidence threshold"
          else begin
            print_endline "ranked candidates:";
            List.iter
              (fun r ->
                Printf.printf "  %-18s confidence %.3f (hamming %d)\n"
                  (Fpva_sim.Fault.to_string r.Fpva_sim.Diagnosis.fault)
                  r.Fpva_sim.Diagnosis.confidence
                  r.Fpva_sim.Diagnosis.hamming)
              ranked
          end
        end
        else begin
          let candidates = Fpva_sim.Diagnosis.diagnose dict observed in
          if candidates = [] then
            print_endline
              "no single-fault candidate matches (multi-fault or out of model)"
          else begin
            Printf.printf "candidates:";
            List.iter
              (fun f -> Printf.printf " %s" (Fpva_sim.Fault.to_string f))
              candidates;
            print_newline ()
          end
        end)
  in
  let term =
    Term.(
      const run $ layout_t $ rows_t $ cols_t $ file_t $ direct_t $ block_t
      $ no_leak_t $ inject_t $ sequential_t $ noise_t $ repeats_t
      $ confidence_t $ seed_t $ jobs_t $ checkpoint_t $ resume_t $ trace_t
      $ metrics_t)
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:
         "Build a diagnostic dictionary for the suite; optionally inject a \
          fault (exactly, or through a noisy retested application) and \
          list the consistent or likelihood-ranked candidates.")
    term

(* ---------- lifetime ---------- *)

let chips_t =
  let doc = "Fleet size: number of chips fielded." in
  Arg.(value & opt int 100 & info [ "chips" ] ~docv:"N" ~doc)

let wear_steps_t =
  let doc = "Wear (aging) steps each chip lives through." in
  Arg.(value & opt int 20 & info [ "steps" ] ~docv:"N" ~doc)

let retest_every_t =
  let doc = "Wear steps between in-field retests." in
  Arg.(value & opt int 5 & info [ "retest-every" ] ~docv:"N" ~doc)

let latent_t =
  let doc =
    "Latent faults per chip (0 fields a healthy fleet, a noise-floor \
     control)."
  in
  Arg.(value & opt int 1 & info [ "faults" ] ~docv:"N" ~doc)

let p0_t =
  let doc = "Latent-fault activation probability after one wear step." in
  Arg.(value & opt float 0.01 & info [ "p0" ] ~docv:"P" ~doc)

let growth_t =
  let doc =
    "Multiplicative wear factor per step: activation follows min(1, p0 * \
     growth^t)."
  in
  Arg.(value & opt float 1.6 & info [ "growth" ] ~docv:"G" ~doc)

let lifetime_cmd =
  let run name rows cols file direct block no_leak chips steps retest_every
      latent classes p0 growth noise repeats seed jobs trace metrics =
    guard_internal @@ fun () ->
    let fpva = resolve_layout ~file name rows cols in
    let config = config_of ~direct ~block ~no_leak () in
    let classes =
      match parse_classes classes with
      | Ok cs -> cs
      | Error msg ->
        prerr_endline ("error: " ^ msg);
        exit 2
    in
    let lifetime_config =
      { Fpva_sim.Lifetime.chips; wear_steps = steps; retest_every;
        fault_count = latent; classes; p0; growth; noise; repeats; seed }
    in
    let jobs = resolve_jobs jobs in
    with_observability ~trace ~metrics @@ fun () ->
    let result = Pipeline.run_exn ~config fpva in
    print_endline (Report.summary result);
    let r =
      try
        Fpva_sim.Lifetime.run ~jobs ~config:lifetime_config fpva
          ~vectors:result.Pipeline.vectors
      with Invalid_argument msg -> invalid_input "%s" msg
    in
    Format.printf "%a@?" Fpva_sim.Lifetime.pp_result r
  in
  let term =
    Term.(
      const run $ layout_t $ rows_t $ cols_t $ file_t $ direct_t $ block_t
      $ no_leak_t $ chips_t $ wear_steps_t $ retest_every_t $ latent_t
      $ classes_t $ p0_t $ growth_t $ noise_t $ repeats_t $ seed_t $ jobs_t
      $ trace_t $ metrics_t)
  in
  Cmd.v
    (Cmd.info "lifetime"
       ~doc:
         "Field a fleet of chips whose latent faults age across wear \
          cycles, retest them periodically through the noisy measurement \
          path, and aggregate per-epoch fleet rows.")
    term

(* ---------- serve / client ---------- *)

module Serve = Fpva_serve.Server
module Serve_client = Fpva_serve.Client
module Protocol = Fpva_serve.Protocol
module Json = Fpva_serve.Json

let socket_t =
  let doc = "Listen on (serve) or dial (client) this unix socket PATH." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_t =
  let doc =
    "Listen on (serve) or dial (client) TCP 127.0.0.1:PORT instead of a \
     unix socket; 0 lets serve pick a free port (printed on startup)."
  in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let resolve_addr ~socket ~port =
  match (socket, port) with
  | Some _, Some _ ->
    prerr_endline "error: --socket and --port are mutually exclusive";
    exit exit_invalid
  | Some path, None -> Protocol.Unix_sock path
  | None, Some port ->
    if port < 0 || port > 65535 then begin
      prerr_endline "error: --port must be in [0, 65535]";
      exit exit_invalid
    end;
    Protocol.Tcp ("127.0.0.1", port)
  | None, None -> Protocol.Unix_sock "fpva-serve.sock"

let serve_cmd =
  let workers_t =
    let doc = "Request-handling threads (max concurrent connections)." in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let max_queue_t =
    let doc =
      "Accepted connections allowed to wait for a worker; beyond this the \
       daemon sheds load with a retryable `overloaded' response."
    in
    Arg.(value & opt int 16 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let idle_timeout_t =
    let doc = "Seconds a connection may sit silent before it is closed." in
    Arg.(value & opt float 30.0 & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let drain_timeout_t =
    let doc =
      "Seconds granted to in-flight requests after SIGTERM/SIGINT before \
       the daemon exits."
    in
    Arg.(value & opt float 5.0 & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_deadline_t =
    let doc =
      "Clamp per-request deadlines to at most SECONDS (also applied to \
       requests that ask for no deadline)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "max-deadline" ] ~docv:"SECONDS" ~doc)
  in
  let checkpoint_dir_t =
    let doc =
      "Checkpoint campaign requests under DIR (created if missing): a \
       daemon killed mid-campaign and restarted on the same DIR resumes \
       the request's completed shards instead of recomputing them."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)
  in
  let chaos_ops_t =
    let doc = "Accept the test-only `crash' op (chaos harnesses only)." in
    Arg.(value & flag & info [ "chaos-ops" ] ~doc)
  in
  let run socket port workers max_queue idle_timeout drain_timeout max_deadline
      checkpoint_dir chaos_ops trace metrics =
    let addr = resolve_addr ~socket ~port in
    if workers < 1 then begin
      prerr_endline "error: --workers must be >= 1";
      exit exit_invalid
    end;
    if max_queue < 0 then begin
      prerr_endline "error: --max-queue must be >= 0";
      exit exit_invalid
    end;
    guard_internal @@ fun () ->
    let config =
      { (Serve.default_config addr) with
        Serve.workers;
        max_queue;
        idle_timeout;
        drain_timeout;
        max_deadline;
        checkpoint_dir;
        chaos_ops }
    in
    match Serve.create config with
    | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit exit_invalid
    | Ok server ->
      Serve.install_signal_handlers server;
      with_observability ~trace ~metrics (fun () ->
          (* Print the resolved address on stdout so scripts dialing a
             --port 0 daemon can learn the port. *)
          Printf.printf "listening %s\n%!"
            (Protocol.addr_to_string (Serve.bound_addr server));
          Serve.run server)
  in
  let term =
    Term.(
      const run $ socket_t $ port_t $ workers_t $ max_queue_t $ idle_timeout_t
      $ drain_timeout_t $ max_deadline_t $ checkpoint_dir_t $ chaos_ops_t
      $ trace_t $ metrics_t)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent test service: line-delimited JSON requests \
          over a unix or TCP socket, with layout caching, per-request \
          deadlines, backpressure and graceful drain.")
    term

let client_cmd =
  let op_t =
    let doc = "Operation: ping | stats | generate | campaign | crash." in
    Arg.(value & pos 0 string "ping" & info [] ~docv:"OP" ~doc)
  in
  let deadline_t =
    let doc =
      "Per-request deadline in milliseconds (the server degrades the \
       result rather than exceeding it)."
    in
    Arg.(
      value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let retries_t =
    let doc =
      "Extra attempts after the first on retryable failures (connection \
       refused/reset, overloaded, shutting down)."
    in
    Arg.(value & opt int 4 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let max_attempts_t =
    let doc =
      "Hard cap on total attempts (first + retries); overrides --retries. \
       Exhaustion exits 1 with the last failure."
    in
    Arg.(
      value & opt (some int) None & info [ "max-attempts" ] ~docv:"N" ~doc)
  in
  let retry_budget_t =
    let doc =
      "Wall-clock cap in milliseconds across all attempts of the request: \
       per-attempt timeouts are clamped to what remains and a backoff \
       that would overrun it gives up — so a dead server costs at most \
       about this long.  Exhaustion exits 1 with the last failure."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "retry-budget-ms" ] ~docv:"MS" ~doc)
  in
  let timeout_t =
    let doc = "Seconds to wait for the complete response." in
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let idempotency_key_t =
    let doc =
      "Idempotency key for retried requests (default: a fresh unique key \
       whenever retries are enabled)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "idempotency-key" ] ~docv:"KEY" ~doc)
  in
  let raw_t =
    let doc = "Print the raw response frame instead of the rendered rows \
               or suite." in
    Arg.(value & flag & info [ "raw" ] ~doc)
  in
  let run op socket port name rows cols file direct block no_leak trials seed
      max_faults classes jobs deadline_ms retries max_attempts retry_budget_ms
      timeout idempotency_key raw =
    let addr = resolve_addr ~socket ~port in
    let gen =
      { Protocol.direct; block; no_leakage = no_leak }
    in
    let request =
      match op with
      | "ping" -> Protocol.Ping
      | "stats" -> Protocol.Stats
      | "crash" -> Protocol.Crash
      | "generate" ->
        let fpva = resolve_layout ~file name rows cols in
        Protocol.Generate { layout = Render.plain fpva; gen }
      | "campaign" ->
        let fpva = resolve_layout ~file name rows cols in
        let classes =
          match parse_classes classes with
          | Ok cs -> cs
          | Error msg ->
            prerr_endline ("error: " ^ msg);
            exit exit_invalid
        in
        let jobs = resolve_jobs jobs in
        Protocol.Campaign
          { layout = Render.plain fpva;
            gen;
            campaign = { Protocol.trials; seed; max_faults; classes; jobs } }
      | other ->
        prerr_endline
          (Printf.sprintf
             "error: unknown op %S (want ping|stats|generate|campaign|crash)"
             other);
        exit exit_invalid
    in
    if retries < 0 then begin
      prerr_endline "error: --retries must be >= 0";
      exit exit_invalid
    end;
    let retries =
      match max_attempts with
      | None -> retries
      | Some n when n >= 1 -> n - 1
      | Some _ ->
        prerr_endline "error: --max-attempts must be >= 1";
        exit exit_invalid
    in
    let retry_budget =
      match retry_budget_ms with
      | None -> None
      | Some ms when ms >= 1 -> Some (float_of_int ms /. 1000.0)
      | Some _ ->
        prerr_endline "error: --retry-budget-ms must be >= 1";
        exit exit_invalid
    in
    guard_internal @@ fun () ->
    let cfg =
      { (Serve_client.default_config addr) with
        Serve_client.retries;
        retry_budget;
        read_timeout = timeout;
        log = prerr_endline }
    in
    let envelope =
      { Protocol.id = None; deadline_ms; idempotency_key; request }
    in
    match Serve_client.call cfg envelope with
    | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit exit_internal
    | Ok json when raw || not (Protocol.response_ok json) ->
      print_endline (Json.to_string json);
      if not (Protocol.response_ok json) then exit exit_invalid
    | Ok json -> (
      (* Render the interesting part of the payload the way the direct CLI
         would, so serve-vs-cold outputs diff cleanly. *)
      match Protocol.response_result json with
      | None -> print_endline (Json.to_string json)
      | Some result -> (
        match
          ( Json.get_string "rendered" result,
            Json.get_string "suite" result )
        with
        | Some rendered, _ -> print_string rendered
        | None, Some suite -> print_string suite
        | None, None -> print_endline (Json.to_string result)))
  in
  let term =
    Term.(
      const run $ op_t $ socket_t $ port_t $ layout_t $ rows_t $ cols_t
      $ file_t $ direct_t $ block_t $ no_leak_t $ trials_t $ seed_t
      $ max_faults_t $ classes_t $ jobs_t $ deadline_t $ retries_t
      $ max_attempts_t $ retry_budget_t $ timeout_t $ idempotency_key_t
      $ raw_t)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running fpva serve daemon, with retry, \
          backoff and idempotent replay.")
    term

let () =
  let info =
    Cmd.info "fpva" ~version:"1.0.0"
      ~doc:"Test generation for microfluidic fully programmable valve arrays."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ show_cmd; generate_cmd; campaign_cmd; diagnose_cmd; lifetime_cmd;
            serve_cmd; client_cmd ]))
