(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section IV) plus the ablations called out in DESIGN.md, and
   runs Bechamel micro-benchmarks of the computational kernels.

   Usage:
     dune exec bench/main.exe                 # everything, moderate trials
     dune exec bench/main.exe -- table1       # Table I only
     dune exec bench/main.exe -- fig8
     dune exec bench/main.exe -- fig9
     dune exec bench/main.exe -- faults [trials]
     dune exec bench/main.exe -- ablation
     dune exec bench/main.exe -- noise
     dune exec bench/main.exe -- micro *)

open Fpva_grid
open Fpva_testgen
module Table = Fpva_util.Table

let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n%!" title bar

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

(* The paper's own numbers, for side-by-side shape comparison. *)
let paper_table1 =
  [ ("5 x 5", 39, 5, 0.3, 8, 0.2, 4, 2.0, 17, 2.5);
    ("10 x 10", 176, 4, 4.0, 18, 5.0, 4, 10.0, 26, 19.0);
    ("15 x 15", 411, 8, 17.0, 28, 26.0, 8, 127.0, 44, 170.0);
    ("20 x 20", 744, 16, 35.0, 38, 41.0, 16, 742.0, 70, 818.0);
    ("30 x 30", 1704, 20, 255.0, 58, 171.0, 20, 1492.0, 98, 1918.0) ]

let table1 () =
  heading "Table I: test-vector generation (this implementation)";
  let table = Report.table1_header in
  let results =
    List.map
      (fun (label, fpva) ->
        let n = Fpva.rows fpva in
        let r = Pipeline.run_exn fpva in
        Report.table1_row table
          ~label:(Printf.sprintf "%d x %d" n n)
          ~top:(Printf.sprintf "%d x %d" (n / 5) (n / 5))
          ~subblock:"5 x 5" r;
        if not (Pipeline.suite_ok r) then
          Printf.printf "WARNING: %s failed suite self-checks\n" label;
        (label, r))
      Layouts.paper_suite
  in
  Table.print table;
  heading "Table I: the paper's reported numbers (reference)";
  let ref_table =
    Table.create
      [ ("Dimension", Table.Left); ("nv", Table.Right); ("np", Table.Right);
        ("tp(s)", Table.Right); ("nc", Table.Right); ("tc(s)", Table.Right);
        ("nl", Table.Right); ("tl(s)", Table.Right); ("N", Table.Right);
        ("T(s)", Table.Right) ]
  in
  List.iter
    (fun (dim, nv, np, tp, nc, tc, nl, tl, n, t) ->
      Table.add_row ref_table
        [ dim; string_of_int nv; string_of_int np; Printf.sprintf "%.1f" tp;
          string_of_int nc; Printf.sprintf "%.1f" tc; string_of_int nl;
          Printf.sprintf "%.1f" tl; string_of_int n; Printf.sprintf "%.1f" t ])
    paper_table1;
  Table.print ref_table;
  print_newline ();
  List.iter
    (fun ((label, r), (_, nv, _, _, _, _, _, _, n_paper, _)) ->
      let ratio =
        float_of_int r.Pipeline.total /. (2.0 *. sqrt (float_of_int nv))
      in
      Printf.printf
        "%s: N=%d (paper %d), N/(2*sqrt(nv))=%.2f, baseline 2nv=%d\n" label
        r.Pipeline.total n_paper ratio (2 * nv))
    (List.combine results paper_table1);
  results

(* ------------------------------------------------------------------ *)
(* Fig. 8: direct vs hierarchical on a full 10x10                      *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  heading "Fig. 8: direct vs hierarchical flow paths, full 10x10 array";
  let fpva = Layouts.figure8 () in
  let direct, uncovered = Flow_path.generate fpva in
  Printf.printf
    "\n(a) direct model: %d flow paths (paper: 2), uncovered=%d\n\n"
    (List.length direct) (List.length uncovered);
  print_endline (Report.render_flow_paths fpva direct);
  let hier = Hierarchy.generate fpva in
  Printf.printf
    "\n(b) hierarchical (5x5 subblocks): %d flow paths (paper: 4)\n\n"
    (List.length hier.Hierarchy.paths);
  print_endline (Report.render_flow_paths fpva hier.Hierarchy.paths);
  Printf.printf
    "\nshape check: hierarchical (%d) > direct (%d); both cover all %d \
     valves: %b\n"
    (List.length hier.Hierarchy.paths)
    (List.length direct) (Fpva.num_valves fpva)
    (Flow_path.covers_all_valves fpva direct
    && Flow_path.covers_all_valves fpva hier.Hierarchy.paths)

(* ------------------------------------------------------------------ *)
(* Fig. 9: 20x20 with channels and obstacles                           *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  heading "Fig. 9: flow paths on the 20x20 array with channels and obstacles";
  let fpva = Layouts.figure9 () in
  let paths, uncovered = Flow_path.generate fpva in
  Printf.printf
    "\n%d valves (paper layout: 744 — exact channel/obstacle placement \
     unpublished), %d flow paths (paper: 16), uncovered=%d\n\n"
    (Fpva.num_valves fpva) (List.length paths) (List.length uncovered);
  print_endline (Report.render_flow_paths fpva paths)

(* ------------------------------------------------------------------ *)
(* Fault-injection study                                               *)
(* ------------------------------------------------------------------ *)

let faults ~trials () =
  heading
    (Printf.sprintf
       "Fault injection: 1-5 random stuck-at faults, %d trials each (paper: \
        10 000 trials, all faults detected)"
       trials);
  let table =
    Table.create
      [ ("Array", Table.Left); ("N", Table.Right); ("faults=1", Table.Right);
        ("faults=2", Table.Right); ("faults=3", Table.Right);
        ("faults=4", Table.Right); ("faults=5", Table.Right);
        ("latency@1", Table.Right); ("sim(s)", Table.Right) ]
  in
  List.iter
    (fun (label, fpva) ->
      let suite = Pipeline.run_exn fpva in
      let config =
        { Fpva_sim.Campaign.default_config with Fpva_sim.Campaign.trials }
      in
      let result =
        Fpva_sim.Campaign.run ~config fpva ~vectors:suite.Pipeline.vectors
      in
      let cell row =
        Printf.sprintf "%d/%d" row.Fpva_sim.Campaign.detected
          row.Fpva_sim.Campaign.trials
      in
      match result.Fpva_sim.Campaign.rows with
      | [ r1; r2; r3; r4; r5 ] ->
        Table.add_row table
          [ label; string_of_int suite.Pipeline.total; cell r1; cell r2;
            cell r3; cell r4; cell r5;
            Fpva_sim.Campaign.mean_latency_string r1;
            Printf.sprintf "%.1f" result.Fpva_sim.Campaign.wall_seconds ]
      | _ ->
        Table.add_row table [ label; "?"; "?"; "?"; "?"; "?"; "?"; "?"; "?" ])
    Layouts.paper_suite;
  Table.print table

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_loop_exclusion () =
  heading "Ablation (a): ILP loop-exclusion constraints (paper eqs. 3-5)";
  let fpva = Helpers_bench.ring_layout () in
  let prob, _ = Flow_path.problem fpva in
  let weight =
    Array.map (fun r -> if r then 1.0 else 0.0) prob.Problem.required
  in
  let score = function
    | Fpva_milp.Branch_bound.Optimal s | Fpva_milp.Branch_bound.Feasible s ->
      let total = ref 0.0 in
      Array.iteri
        (fun e w ->
          if e < prob.Problem.num_edges
             && s.Fpva_milp.Simplex.values.(e) > 0.5
          then total := !total +. w)
        weight;
      Some !total
    | Fpva_milp.Branch_bound.Infeasible | Fpva_milp.Branch_bound.Unbounded
    | Fpva_milp.Branch_bound.Unknown -> None
  in
  let with_lp =
    Fpva_milp.Branch_bound.solve (Path_ilp.single_path_lp prob ~weight)
  in
  let without_lp =
    Fpva_milp.Branch_bound.solve
      (Path_ilp.single_path_lp ~loop_exclusion:false prob ~weight)
  in
  let actual_coverage found =
    match found with
    | Some (path : Problem.path) ->
      List.fold_left
        (fun acc e -> acc +. weight.(e))
        0.0 path.Problem.edges
    | None -> nan
  in
  let with_path = Path_ilp.find prob ~weight in
  let without_path = Path_ilp.find ~loop_exclusion:false prob ~weight in
  (* The bench layout pins both ports to the same corner cell: the only
     simple path covers no valve at all, so any "coverage" the
     unconstrained model reports comes entirely from disjoint loops — the
     false counting of Fig. 6(c). *)
  Printf.printf "\nwith eqs. 3-5   : model claims %s covered, decoded path \
                 actually covers %.0f\n"
    (match score with_lp with Some s -> Printf.sprintf "%.0f" s | None -> "-")
    (actual_coverage with_path);
  Printf.printf "without eqs. 3-5: model claims %s covered, decoded path \
                 actually covers %.0f\n"
    (match score without_lp with Some s -> Printf.sprintf "%.0f" s | None -> "-")
    (actual_coverage without_path);
  Printf.printf
    "the unconstrained model books valves sitting on a disjoint loop as \
     covered although no pressure can ever reach them (paper Fig. 6(c)).\n"

let ablation_anti_masking () =
  heading "Ablation (b): anti-masking constraint (paper eq. 9)";
  let fpva = Layouts.paper_array 10 in
  print_newline ();
  let report label anti_masking =
    let flow, _ = Flow_path.generate fpva in
    let cuts, leftover = Cut_set.generate ~anti_masking fpva in
    let vectors =
      List.map (Test_vector.of_flow_path fpva) flow
      @ List.map (Test_vector.of_cut_set fpva) cuts
    in
    let rng = Fpva_util.Rng.create 2024 in
    let nv = Fpva.num_valves fpva in
    let trials = 20_000 in
    let escapes = ref 0 in
    for _ = 1 to trials do
      let a = Fpva_util.Rng.int rng nv in
      let b = Fpva_util.Rng.int rng nv in
      if a <> b then begin
        let faults =
          [ Fpva_sim.Fault.Stuck_at_0 a; Fpva_sim.Fault.Stuck_at_1 b ]
        in
        if not (Fpva_sim.Simulator.detected_by_suite fpva ~faults vectors)
        then incr escapes
      end
    done;
    Printf.printf "%-22s: nc=%d (+%d pierced targets), SA0+SA1 escapes %d/%d\n"
      label (List.length cuts) (List.length leftover) !escapes trials
  in
  report "with eq. 9" true;
  report "without eq. 9" false

let ablation_block_size () =
  heading "Ablation (c): subblock size sweep, 20x20 array";
  let fpva = Layouts.paper_array 20 in
  let table =
    Table.create
      [ ("block", Table.Left); ("np", Table.Right); ("stitched", Table.Right);
        ("fallback", Table.Right); ("time(s)", Table.Right) ]
  in
  List.iter
    (fun b ->
      let options =
        { Hierarchy.default_options with
          Hierarchy.block_rows = b;
          block_cols = b }
      in
      let r, dt =
        Fpva_util.Timer.time (fun () -> Hierarchy.generate ~options fpva)
      in
      Table.add_row table
        [ Printf.sprintf "%dx%d" b b;
          string_of_int (List.length r.Hierarchy.paths);
          string_of_int r.Hierarchy.stitched;
          string_of_int r.Hierarchy.fallback; Printf.sprintf "%.1f" dt ])
    [ 2; 3; 4; 5; 7; 10 ];
  let direct, dt = Fpva_util.Timer.time (fun () -> Flow_path.generate fpva) in
  Table.add_row table
    [ "direct"; string_of_int (List.length (fst direct)); "-"; "-";
      Printf.sprintf "%.1f" dt ];
  Table.print table

let ablation_engine () =
  heading
    "Ablation (d): combinatorial search vs exact ILP engine (tiny arrays)";
  let table =
    Table.create
      [ ("array", Table.Left); ("engine", Table.Left); ("np", Table.Right);
        ("time(s)", Table.Right) ]
  in
  List.iter
    (fun (rows, cols) ->
      let bb =
        { Fpva_milp.Branch_bound.default_options with
          Fpva_milp.Branch_bound.max_nodes = 50_000;
          time_limit = 60.0 }
      in
      List.iter
        (fun (name, engine) ->
          let fpva = Helpers_bench.small_layout rows cols in
          let (paths, _), dt =
            Fpva_util.Timer.time (fun () -> Flow_path.generate ~engine fpva)
          in
          Table.add_row table
            [ Printf.sprintf "%dx%d" rows cols; name;
              string_of_int (List.length paths); Printf.sprintf "%.2f" dt ])
        [ ("search", Cover.Search Path_search.default_params);
          ("ilp", Cover.Ilp bb) ])
    [ (2, 2); (2, 3); (3, 3) ];
  Table.print table

let ablation_noise () =
  heading
    "Ablation (e): measurement noise vs adaptive majority-vote retesting \
     (10x10 array)";
  let fpva = Layouts.paper_array 10 in
  let suite = Pipeline.run_exn fpva in
  let table =
    Table.create
      [ ("noise", Table.Right); ("repeats", Table.Right);
        ("detect@1", Table.Right); ("false-alarm", Table.Right);
        ("reads/vec", Table.Right) ]
  in
  List.iter
    (fun repeats ->
      List.iter
        (fun noise ->
          let config =
            { Fpva_sim.Campaign.base =
                { Fpva_sim.Campaign.default_config with
                  Fpva_sim.Campaign.trials = 500;
                  fault_counts = [ 1 ] };
              noise_levels = [ noise ];
              repeats }
          in
          let r =
            Fpva_sim.Campaign.run_noisy ~config fpva
              ~vectors:suite.Pipeline.vectors
          in
          List.iter
            (fun row ->
              Table.add_row table
                [ Printf.sprintf "%.3f" row.Fpva_sim.Campaign.noise;
                  string_of_int repeats;
                  Printf.sprintf "%.4f"
                    (Fpva_sim.Campaign.noisy_detection_rate row);
                  Printf.sprintf "%.4f"
                    (Fpva_sim.Campaign.false_alarm_rate row);
                  Printf.sprintf "%.2f" (Fpva_sim.Campaign.mean_reads row) ])
            r.Fpva_sim.Campaign.noise_rows)
        [ 0.0; 0.01; 0.02; 0.05 ])
    [ 1; 3; 5 ];
  Table.print table;
  Printf.printf
    "\nsingle-read application loses detections and raises false alarms as \
     meter noise grows; the adaptive majority vote buys both back for a \
     modest read overhead concentrated on disagreeing vectors.\n"

let ablation () =
  ablation_loop_exclusion ();
  ablation_anti_masking ();
  ablation_block_size ();
  ablation_engine ();
  ablation_noise ()

(* ------------------------------------------------------------------ *)
(* Extensions: diagnosis resolution and test-application sequencing    *)
(* ------------------------------------------------------------------ *)

let extensions () =
  heading
    "Extensions: diagnostic resolution and switching-cost sequencing";
  let table =
    Table.create
      [ ("Array", Table.Left); ("N", Table.Right); ("classes", Table.Right);
        ("resolution", Table.Right); ("switch before", Table.Right);
        ("switch after", Table.Right); ("saved", Table.Right) ]
  in
  List.iter
    (fun (label, fpva) ->
      let suite = Pipeline.run_exn fpva in
      let faults = Fpva_sim.Diagnosis.single_faults fpva in
      let dict =
        Fpva_sim.Diagnosis.build fpva ~vectors:suite.Pipeline.vectors ~faults
      in
      let classes =
        List.length (Fpva_sim.Diagnosis.equivalence_classes dict)
      in
      let before, after =
        Sequencer.improvement fpva suite.Pipeline.vectors
      in
      Table.add_row table
        [ label; string_of_int suite.Pipeline.total; string_of_int classes;
          Printf.sprintf "%.2f" (Fpva_sim.Diagnosis.resolution dict);
          string_of_int before; string_of_int after;
          Printf.sprintf "%.0f%%"
            (100.0
            *. float_of_int (before - after)
            /. float_of_int (max before 1)) ])
    [ List.nth Layouts.paper_suite 0; List.nth Layouts.paper_suite 1;
      List.nth Layouts.paper_suite 2 ];
  Table.print table;
  Printf.printf
    "\nresolution = distinguishable fault classes / single-fault universe \
     (1.0 = full diagnosability); switching cost counts valve actuations \
     over the whole test session.\n"

(* ------------------------------------------------------------------ *)
(* Campaign throughput: compiled core vs the per-call reference path   *)
(* ------------------------------------------------------------------ *)

(* The pre-refactor application path, reconstructed on top of the kept
   specification traversal: every vector application re-derives effective
   valve states and walks the grid node-by-node through an edge-valued
   predicate.  Same RNG seed and draw order as [Campaign.run], so the two
   paths score identical fault sets and must agree on detection counts. *)
let legacy_campaign_run config fpva ~vectors =
  let t0 = Fpva_util.Timer.now () in
  let rng = Fpva_util.Rng.create config.Fpva_sim.Campaign.seed in
  let detects ~faults v =
    let states =
      Fpva_sim.Simulator.effective_states fpva ~faults
        ~open_valves:v.Test_vector.open_valves
    in
    let obs =
      Graph.pressurized_sinks_spec fpva ~open_edge:(fun e ->
          match Fpva.valve_id_opt fpva e with
          | Some vid -> states.(vid)
          | None -> true)
    in
    obs <> v.Test_vector.golden
  in
  let detected = ref 0 in
  List.iter
    (fun fault_count ->
      for _ = 1 to config.Fpva_sim.Campaign.trials do
        let faults = Fpva_sim.Fault.random_multi rng fpva ~count:fault_count in
        if faults <> [] && List.exists (fun v -> detects ~faults v) vectors
        then incr detected
      done)
    config.Fpva_sim.Campaign.fault_counts;
  (!detected, Fpva_util.Timer.now () -. t0)

(* Every field of BENCH_campaign.json is computed by this function, this
   run — nothing is copied forward from a previous artifact.  After
   writing, the file is read back, parsed, and hard-checked for missing
   or vacuous fields, so a stale or truncated artifact fails the bench
   instead of silently passing CI. *)
let campaign_bench ~trials () =
  heading
    (Printf.sprintf
       "Campaign throughput: 8x8 array, %d trials per fault count" trials);
  let fpva = Layouts.paper_array 8 in
  let suite = Pipeline.run_exn fpva in
  let vectors = suite.Pipeline.vectors in
  let config =
    { Fpva_sim.Campaign.default_config with Fpva_sim.Campaign.trials }
  in
  let total_trials = trials * List.length config.Fpva_sim.Campaign.fault_counts in
  let rate n wall = float_of_int n /. Float.max wall 1e-9 in
  (* Compiled path, ideal meters, on the legacy stream so the detection
     counts are comparable draw-for-draw with [legacy_campaign_run]. *)
  let ideal =
    Fpva_sim.Campaign.run ~config ~stream:Fpva_sim.Campaign.Legacy fpva
      ~vectors
  in
  let ideal_detected =
    List.fold_left
      (fun acc r -> acc + r.Fpva_sim.Campaign.detected)
      0 ideal.Fpva_sim.Campaign.rows
  in
  let ideal_tps = rate total_trials ideal.Fpva_sim.Campaign.wall_seconds in
  (* Sharded stream across a jobs sweep: rows must be bit-identical for
     every jobs value; throughput should scale with available cores. *)
  let row_eq (a : Fpva_sim.Campaign.row) (b : Fpva_sim.Campaign.row) =
    a.Fpva_sim.Campaign.fault_count = b.Fpva_sim.Campaign.fault_count
    && a.Fpva_sim.Campaign.trials = b.Fpva_sim.Campaign.trials
    && a.Fpva_sim.Campaign.detected = b.Fpva_sim.Campaign.detected
    && a.Fpva_sim.Campaign.escapes = b.Fpva_sim.Campaign.escapes
    && a.Fpva_sim.Campaign.short_draws = b.Fpva_sim.Campaign.short_draws
    && a.Fpva_sim.Campaign.void_draws = b.Fpva_sim.Campaign.void_draws
    && Float.compare a.Fpva_sim.Campaign.mean_latency
         b.Fpva_sim.Campaign.mean_latency
       = 0
  in
  let sweep =
    List.map
      (fun jobs ->
        let r = Fpva_sim.Campaign.run ~config ~jobs fpva ~vectors in
        ( jobs,
          r.Fpva_sim.Campaign.rows,
          rate total_trials r.Fpva_sim.Campaign.wall_seconds ))
      [ 1; 2; 4 ]
  in
  let j1_rows, j1_tps =
    match sweep with (1, rows, tps) :: _ -> (rows, tps) | _ -> assert false
  in
  let rows_identical =
    List.for_all
      (fun (_, rows, _) ->
        List.length rows = List.length j1_rows
        && List.for_all2 row_eq rows j1_rows)
      sweep
  in
  let tps_of j =
    List.assoc j (List.map (fun (j, _, tps) -> (j, tps)) sweep)
  in
  (* Bit-parallel kernel vs its scalar reference, single-threaded.  A
     dedicated pair of runs with a floor on the trial count: at the tiny
     CI trial counts a few-hundred-trial scalar run finishes in fractions of a
     millisecond and the ratio would be timer noise. *)
  let kernel_trials = max trials 1000 in
  let kernel_config =
    { config with Fpva_sim.Campaign.trials = kernel_trials }
  in
  let kernel_total =
    kernel_trials * List.length config.Fpva_sim.Campaign.fault_counts
  in
  let kernel_run kernel =
    Fpva_sim.Campaign.run ~config:kernel_config ~kernel ~jobs:1 fpva ~vectors
  in
  (* The two kernels are timed back to back inside each round and the
     speedup is the best per-round ratio: a load spike on a shared
     runner then slows both sides of a ratio instead of whichever
     kernel happened to be running, which is what made a
     separately-timed comparison flake. *)
  let scalar_run = ref None and batched_run = ref None in
  let scalar_best = ref infinity and batched_best = ref infinity in
  let speedup_best = ref 0.0 in
  for _ = 1 to 5 do
    let s = kernel_run Fpva_sim.Campaign.Scalar in
    let b = kernel_run Fpva_sim.Campaign.Batched in
    scalar_best := Float.min !scalar_best s.Fpva_sim.Campaign.wall_seconds;
    batched_best := Float.min !batched_best b.Fpva_sim.Campaign.wall_seconds;
    speedup_best :=
      Float.max !speedup_best
        (s.Fpva_sim.Campaign.wall_seconds
        /. Float.max b.Fpva_sim.Campaign.wall_seconds 1e-9);
    scalar_run := Some s;
    batched_run := Some b
  done;
  let scalar_run = Option.get !scalar_run in
  let batched_run = Option.get !batched_run in
  let scalar_tps = rate kernel_total !scalar_best in
  let batched_tps = rate kernel_total !batched_best in
  let batched_speedup = !speedup_best in
  let batched_rows_identical =
    List.length batched_run.Fpva_sim.Campaign.rows
    = List.length scalar_run.Fpva_sim.Campaign.rows
    && List.for_all2 row_eq batched_run.Fpva_sim.Campaign.rows
         scalar_run.Fpva_sim.Campaign.rows
  in
  (* Compiled path, noisy meters with adaptive retesting. *)
  let noise_config =
    { Fpva_sim.Campaign.base = config;
      noise_levels = [ 0.02 ];
      repeats = 3 }
  in
  let noisy = Fpva_sim.Campaign.run_noisy ~config:noise_config fpva ~vectors in
  let noisy_tps = rate total_trials noisy.Fpva_sim.Campaign.n_wall_seconds in
  (* Reference (pre-refactor) path. *)
  let legacy_detected, legacy_wall = legacy_campaign_run config fpva ~vectors in
  let legacy_tps = rate total_trials legacy_wall in
  let speedup = ideal_tps /. Float.max legacy_tps 1e-9 in
  let agreement = ideal_detected = legacy_detected in
  Printf.printf "vectors=%d, fault counts %s\n" suite.Pipeline.total
    (String.concat ","
       (List.map string_of_int config.Fpva_sim.Campaign.fault_counts));
  Printf.printf "ideal (compiled) : %d trials in %.3fs  (%.0f trials/s)\n"
    total_trials ideal.Fpva_sim.Campaign.wall_seconds ideal_tps;
  Printf.printf "noisy (compiled) : %d trials in %.3fs  (%.0f trials/s)\n"
    total_trials noisy.Fpva_sim.Campaign.n_wall_seconds noisy_tps;
  Printf.printf "legacy reference : %d trials in %.3fs  (%.0f trials/s)\n"
    total_trials legacy_wall legacy_tps;
  Printf.printf "speedup (ideal vs legacy): %.1fx, detection counts agree: %b\n"
    speedup agreement;
  if not agreement then
    Printf.printf "WARNING: compiled path detected %d, legacy detected %d\n"
      ideal_detected legacy_detected;
  (* Bit-parallel kernel vs scalar reference. *)
  Printf.printf
    "scalar kernel    : %d trials at %.0f trials/s (best of 5, jobs=1)\n"
    kernel_total scalar_tps;
  Printf.printf
    "batched kernel   : %d trials at %.0f trials/s (best of 5, jobs=1)\n"
    kernel_total batched_tps;
  Printf.printf
    "batched speedup vs scalar: %.1fx (best paired round, gate: >= 4)\n"
    batched_speedup;
  let batched_gate = batched_speedup >= 4.0 in
  if not batched_gate then
    Printf.printf
      "ERROR: the bit-parallel kernel is less than 4x the scalar kernel\n";
  Printf.printf "batched rows identical to scalar rows: %b\n"
    batched_rows_identical;
  if not batched_rows_identical then
    Printf.printf "ERROR: the kernels disagree on campaign rows\n";
  (* Parallel scaling of the sharded stream. *)
  List.iter
    (fun (jobs, _, tps) ->
      Printf.printf
        "sharded jobs=%d  : %d trials in %.3fs  (%.0f trials/s, efficiency \
         %.2f)\n"
        jobs total_trials
        (float_of_int total_trials /. Float.max tps 1e-9)
        tps
        (tps /. (float_of_int jobs *. Float.max j1_tps 1e-9)))
    sweep;
  Printf.printf "sharded rows identical across jobs {1,2,4}: %b\n"
    rows_identical;
  if not rows_identical then
    Printf.printf "ERROR: sharded campaign rows differ across jobs values\n";
  let jobs2_not_slower = tps_of 2 >= j1_tps in
  if not jobs2_not_slower then
    Printf.printf
      "WARNING: jobs=2 slower than jobs=1 (%.0f vs %.0f trials/s) — expected \
       on a single-core runner, a regression on multi-core hardware\n"
      (tps_of 2) j1_tps;
  let parallel_speedup = tps_of 4 /. Float.max j1_tps 1e-9 in
  (* The jobs=4 gate only means something when the hardware has 4 cores to
     give: enforce on multi-core, warn on constrained runners. *)
  let multicore = Domain.recommended_domain_count () >= 4 in
  let parallel_gate = (not multicore) || parallel_speedup >= 2.0 in
  Printf.printf
    "parallel speedup jobs=4 vs jobs=1: %.2fx (gate: >= 2.0 on multi-core; \
     %s)\n"
    parallel_speedup
    (if multicore then "enforced" else "advisory on this runner");
  if not parallel_gate then
    Printf.printf
      "ERROR: jobs=4 is less than 2x jobs=1 on a multi-core runner\n"
  else if (not multicore) && parallel_speedup < 2.0 then
    Printf.printf
      "WARNING: jobs=4 speedup %.2fx below 2.0 — runner reports < 4 cores, \
       not treating as a regression\n"
      parallel_speedup;
  (* Traced twin: the same sharded run with tracing on must reproduce the
     jobs=1 rows bit-for-bit (tracing reads only clocks and counters, never
     an RNG stream), and per-batch aggregation must keep its overhead
     small. *)
  let module Trace = Fpva_util.Trace in
  Trace.reset ();
  Trace.enable ();
  let traced = Fpva_sim.Campaign.run ~config ~jobs:2 fpva ~vectors in
  Trace.disable ();
  let traced_rows_identical =
    List.length traced.Fpva_sim.Campaign.rows = List.length j1_rows
    && List.for_all2 row_eq traced.Fpva_sim.Campaign.rows j1_rows
  in
  Printf.printf "traced jobs=2 rows identical to untraced jobs=1: %b\n"
    traced_rows_identical;
  if not traced_rows_identical then
    Printf.printf "ERROR: tracing changed the campaign rows\n";
  let untraced_j2_wall = float_of_int total_trials /. Float.max (tps_of 2) 1e-9 in
  let trace_overhead_pct =
    100.0
    *. ((traced.Fpva_sim.Campaign.wall_seconds /. Float.max untraced_j2_wall 1e-9)
       -. 1.0)
  in
  Printf.printf "traced jobs=2 overhead vs untraced: %.1f%%\n"
    trace_overhead_pct;
  let metrics_json =
    let entries =
      List.filter_map
        (fun (name, v) ->
          if v = 0 then None
          else Some (Printf.sprintf "\"%s\": %d" name v))
        (Trace.counters ())
      @ List.filter_map
          (fun (name, v) ->
            if v = 0.0 then None
            else Some (Printf.sprintf "\"%s\": %.1f" name v))
          (Trace.gauges ())
    in
    String.concat ", " entries
  in
  let oc = open_out "BENCH_campaign.json" in
  Printf.fprintf oc
    "{\n\
    \  \"layout\": \"paper_array_8x8\",\n\
    \  \"vectors\": %d,\n\
    \  \"trials_per_fault_count\": %d,\n\
    \  \"total_trials\": %d,\n\
    \  \"ideal_trials_per_sec\": %.1f,\n\
    \  \"noisy_trials_per_sec\": %.1f,\n\
    \  \"legacy_trials_per_sec\": %.1f,\n\
    \  \"speedup_ideal_vs_legacy\": %.2f,\n\
    \  \"detection_counts_agree\": %b,\n\
    \  \"kernel_trials_per_fault_count\": %d,\n\
    \  \"scalar_trials_per_sec\": %.1f,\n\
    \  \"batched_trials_per_sec\": %.1f,\n\
    \  \"batched_speedup_vs_scalar\": %.2f,\n\
    \  \"batched_rows_identical\": %b,\n\
    \  \"recommended_domains\": %d,\n\
    \  \"sharded_j1_trials_per_sec\": %.1f,\n\
    \  \"sharded_j2_trials_per_sec\": %.1f,\n\
    \  \"sharded_j4_trials_per_sec\": %.1f,\n\
    \  \"parallel_speedup_j4_vs_j1\": %.2f,\n\
    \  \"parallel_gate_enforced\": %b,\n\
    \  \"scaling_efficiency_j4\": %.2f,\n\
    \  \"sharded_rows_identical_across_jobs\": %b,\n\
    \  \"jobs2_not_slower\": %b,\n\
    \  \"traced_rows_identical\": %b,\n\
    \  \"trace_overhead_pct\": %.1f,\n\
    \  \"metrics\": {%s}\n\
     }\n"
    suite.Pipeline.total trials total_trials ideal_tps noisy_tps legacy_tps
    speedup agreement kernel_trials scalar_tps batched_tps batched_speedup
    batched_rows_identical
    (Domain.recommended_domain_count ())
    j1_tps (tps_of 2) (tps_of 4) parallel_speedup multicore
    (tps_of 4 /. (4.0 *. Float.max j1_tps 1e-9))
    rows_identical jobs2_not_slower traced_rows_identical trace_overhead_pct
    metrics_json;
  close_out oc;
  Printf.printf "wrote BENCH_campaign.json\n";
  (* Artifact self-check: read the file back and refuse missing or
     vacuous fields.  This is what makes the bench the single writer of
     every number it reports — a stale or hand-edited artifact cannot
     pass. *)
  let artifact_ok =
    let module Json = Fpva_serve.Json in
    let contents =
      let ic = open_in_bin "BENCH_campaign.json" in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse contents with
    | Error msg ->
      Printf.printf "ERROR: BENCH_campaign.json does not parse: %s\n" msg;
      false
    | Ok json ->
      let problems = ref [] in
      let need_pos_float f =
        match Json.get_float f json with
        | Some v when v > 0.0 -> ()
        | Some _ -> problems := (f ^ " is vacuous") :: !problems
        | None -> problems := (f ^ " missing") :: !problems
      in
      let need_pos_int f =
        match Json.get_int f json with
        | Some v when v > 0 -> ()
        | Some _ -> problems := (f ^ " is vacuous") :: !problems
        | None -> problems := (f ^ " missing") :: !problems
      in
      let need_bool f =
        if Json.get_bool f json = None then
          problems := (f ^ " missing") :: !problems
      in
      List.iter need_pos_int
        [ "vectors"; "trials_per_fault_count"; "total_trials";
          "kernel_trials_per_fault_count"; "recommended_domains" ];
      List.iter need_pos_float
        [ "ideal_trials_per_sec"; "noisy_trials_per_sec";
          "legacy_trials_per_sec"; "speedup_ideal_vs_legacy";
          "scalar_trials_per_sec"; "batched_trials_per_sec";
          "batched_speedup_vs_scalar"; "sharded_j1_trials_per_sec";
          "sharded_j2_trials_per_sec"; "sharded_j4_trials_per_sec";
          "parallel_speedup_j4_vs_j1"; "scaling_efficiency_j4" ];
      List.iter need_bool
        [ "detection_counts_agree"; "batched_rows_identical";
          "parallel_gate_enforced"; "sharded_rows_identical_across_jobs";
          "jobs2_not_slower"; "traced_rows_identical" ];
      if Json.member "trace_overhead_pct" json = None then
        problems := "trace_overhead_pct missing" :: !problems;
      if Json.member "metrics" json = None then
        problems := "metrics missing" :: !problems;
      List.iter
        (fun p -> Printf.printf "ERROR: BENCH_campaign.json: %s\n" p)
        !problems;
      !problems = []
  in
  if artifact_ok then Printf.printf "BENCH_campaign.json self-check passed\n";
  agreement && rows_identical && traced_rows_identical
  && batched_rows_identical && batched_gate && parallel_gate && artifact_ok

(* ------------------------------------------------------------------ *)
(* Checkpoint overhead: journaled vs plain campaign throughput         *)
(* ------------------------------------------------------------------ *)

(* The acceptance gate for crash-safe campaigns: journaling every shard
   to a write-ahead log (with periodic fsync) must cost less than 10% of
   campaign throughput on the default 8x8 array, and a resume from a
   truncated journal must reproduce the plain run's rows byte for byte.
   Best-of-3 timing damps runner noise; the first pair of runs also warms
   the compiled-simulator cache so neither side pays it alone. *)
let checkpoint_bench ~trials () =
  heading
    (Printf.sprintf
       "Checkpoint overhead: 8x8 array, %d trials per fault count" trials);
  let module Campaign = Fpva_sim.Campaign in
  let module Checkpoint = Fpva_sim.Checkpoint in
  let fpva = Layouts.paper_array 8 in
  let suite = Pipeline.run_exn fpva in
  let vectors = suite.Pipeline.vectors in
  let config =
    { Fpva_sim.Campaign.default_config with Fpva_sim.Campaign.trials }
  in
  let total_trials =
    trials * List.length config.Fpva_sim.Campaign.fault_counts
  in
  let rate n wall = float_of_int n /. Float.max wall 1e-9 in
  let rendered = Fpva_serve.Protocol.rendered_rows in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fpva-bench-ckpt-%d.bin" (Unix.getpid ()))
  in
  let key = Campaign.checkpoint_key config fpva ~vectors in
  let open_ck ~resume =
    match Checkpoint.open_ ~path ~resume ~key () with
    | Ok ck -> ck
    | Error e ->
      failwith ("checkpoint bench: " ^ Checkpoint.open_error_to_string e)
  in
  let best_of n f =
    let best = ref infinity and last = ref None in
    for _ = 1 to n do
      let r = f () in
      best := Float.min !best r.Fpva_sim.Campaign.wall_seconds;
      last := Some r
    done;
    (Option.get !last, !best)
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let plain, plain_wall =
        best_of 3 (fun () -> Campaign.run ~config fpva ~vectors)
      in
      let journaled, journaled_wall =
        best_of 3 (fun () ->
            (try Sys.remove path with Sys_error _ -> ());
            let ck = open_ck ~resume:false in
            let r = Campaign.run ~config ~checkpoint:ck fpva ~vectors in
            if Checkpoint.failure ck <> None then
              failwith "checkpoint bench: journal write failed";
            Checkpoint.close ck;
            r)
      in
      let journal_bytes = (Unix.stat path).Unix.st_size in
      let rows_identical = rendered journaled = rendered plain in
      (* Interrupt: drop the final third of the journal (possibly tearing
         a record), resume, and demand the same rows with real replay. *)
      let cut = journal_bytes * 2 / 3 in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd cut;
      Unix.close fd;
      let ck = open_ck ~resume:true in
      let resumed = Campaign.run ~config ~checkpoint:ck fpva ~vectors in
      let resumed_shards = Checkpoint.resumed_shards ck in
      let recomputed_shards = Checkpoint.recorded_shards ck in
      Checkpoint.close ck;
      let resume_rows_identical = rendered resumed = rendered plain in
      let resume_exercised = resumed_shards > 0 && recomputed_shards > 0 in
      let plain_tps = rate total_trials plain_wall in
      let journaled_tps = rate total_trials journaled_wall in
      let overhead = (journaled_wall /. Float.max plain_wall 1e-9) -. 1.0 in
      let overhead_ok = overhead < 0.10 in
      Printf.printf "plain      : %d trials in %.3fs  (%.0f trials/s)\n"
        total_trials plain_wall plain_tps;
      Printf.printf
        "journaled  : %d trials in %.3fs  (%.0f trials/s, journal %d bytes)\n"
        total_trials journaled_wall journaled_tps journal_bytes;
      Printf.printf "overhead   : %.1f%% (gate: < 10%%)\n" (100.0 *. overhead);
      Printf.printf
        "resume     : truncated to %d bytes, replayed %d shards, recomputed \
         %d\n"
        cut resumed_shards recomputed_shards;
      if not overhead_ok then
        Printf.printf "ERROR: checkpointing costs more than 10%% throughput\n";
      if not rows_identical then
        Printf.printf "ERROR: journaled rows differ from plain rows\n";
      if not resume_rows_identical then
        Printf.printf "ERROR: resumed rows differ from plain rows\n";
      if not resume_exercised then
        Printf.printf
          "ERROR: resume was vacuous (nothing replayed or nothing \
           recomputed)\n";
      let oc = open_out "BENCH_checkpoint.json" in
      Printf.fprintf oc
        "{\n\
        \  \"layout\": \"paper_array_8x8\",\n\
        \  \"vectors\": %d,\n\
        \  \"trials_per_fault_count\": %d,\n\
        \  \"total_trials\": %d,\n\
        \  \"plain_trials_per_sec\": %.1f,\n\
        \  \"journaled_trials_per_sec\": %.1f,\n\
        \  \"overhead_pct\": %.2f,\n\
        \  \"overhead_under_10pct\": %b,\n\
        \  \"journal_bytes\": %d,\n\
        \  \"rows_identical\": %b,\n\
        \  \"resumed_shards\": %d,\n\
        \  \"recomputed_shards\": %d,\n\
        \  \"resume_rows_identical\": %b\n\
         }\n"
        suite.Pipeline.total trials total_trials plain_tps journaled_tps
        (100.0 *. overhead) overhead_ok journal_bytes rows_identical
        resumed_shards recomputed_shards resume_rows_identical;
      close_out oc;
      Printf.printf "wrote BENCH_checkpoint.json\n";
      overhead_ok && rows_identical && resume_rows_identical
      && resume_exercised)

(* ------------------------------------------------------------------ *)
(* Persistent service: cold vs warm request latency                    *)
(* ------------------------------------------------------------------ *)

(* The cache-hit claim of the serve daemon, measured over the real wire:
   the first generate request pays parse + validate + simulator warm-up +
   the full pipeline; repeats of the same (layout, config) must be served
   from the suite cache and come back measurably faster.  Also times the
   idempotent byte-replay path, which skips even the cache lookup work. *)
let serve_bench () =
  heading "Persistent service (fpva serve): cold vs warm latency";
  let module Serve = Fpva_serve.Server in
  let module Client = Fpva_serve.Client in
  let module Protocol = Fpva_serve.Protocol in
  let module Json = Fpva_serve.Json in
  let module Timer = Fpva_util.Timer in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fpva-bench-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    { (Serve.default_config (Protocol.Unix_sock path)) with
      Serve.log = ignore }
  in
  let server =
    match Serve.create cfg with
    | Ok s -> s
    | Error msg -> failwith ("serve bench: " ^ msg)
  in
  let th = Thread.create Serve.run server in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop server;
      Thread.join th;
      try Unix.unlink path with _ -> ())
    (fun () ->
      let client = { (Client.default_config (Protocol.Unix_sock path)) with
                     Client.retries = 0 } in
      let layout = Render.plain (Layouts.paper_array 8) in
      let call ?key () =
        let envelope =
          { Protocol.id = None;
            deadline_ms = None;
            idempotency_key = key;
            request =
              Protocol.Generate
                { layout; gen = Protocol.default_gen_options } }
        in
        match Client.call client envelope with
        | Ok json when Protocol.response_ok json -> json
        | Ok _ -> failwith "serve bench: request failed"
        | Error msg -> failwith ("serve bench: " ^ msg)
      in
      let json, cold = Timer.time (fun () -> call ()) in
      let cached_flag j =
        match Protocol.response_result j with
        | Some r -> Json.get_bool "cached" r
        | None -> None
      in
      let cold_was_cold = cached_flag json = Some false in
      let warm_runs = 20 in
      let warm = Array.make warm_runs 0.0 in
      let all_warm = ref true in
      for i = 0 to warm_runs - 1 do
        let j, s = Timer.time (fun () -> call ()) in
        warm.(i) <- s;
        if cached_flag j <> Some true then all_warm := false
      done;
      let warm_mean =
        Array.fold_left ( +. ) 0.0 warm /. float_of_int warm_runs
      in
      let warm_min = Array.fold_left Float.min warm.(0) warm in
      (* Idempotent replay: same key twice, time the replayed call. *)
      ignore (call ~key:"bench-replay" ());
      let _, replay = Timer.time (fun () -> call ~key:"bench-replay" ()) in
      let speedup = cold /. Float.max warm_mean 1e-9 in
      let warm_faster = warm_mean < cold in
      Printf.printf
        "cold: %.1f ms   warm mean: %.2f ms (min %.2f)   replay: %.2f ms   \
         speedup: %.0fx\n"
        (1000.0 *. cold) (1000.0 *. warm_mean) (1000.0 *. warm_min)
        (1000.0 *. replay) speedup;
      if not cold_was_cold then
        Printf.printf "ERROR: first request was already cached\n";
      if not !all_warm then
        Printf.printf "ERROR: a repeat request missed the suite cache\n";
      if not warm_faster then
        Printf.printf
          "ERROR: warm cache-hit requests are not faster than the cold one\n";
      let oc = open_out "BENCH_serve.json" in
      Printf.fprintf oc
        "{\n\
        \  \"layout\": \"paper_array_8x8\",\n\
        \  \"cold_ms\": %.3f,\n\
        \  \"warm_mean_ms\": %.3f,\n\
        \  \"warm_min_ms\": %.3f,\n\
        \  \"replay_ms\": %.3f,\n\
        \  \"warm_runs\": %d,\n\
        \  \"speedup_cold_vs_warm\": %.2f,\n\
        \  \"cold_was_cold\": %b,\n\
        \  \"all_repeats_cache_hit\": %b,\n\
        \  \"warm_faster\": %b\n\
         }\n"
        (1000.0 *. cold) (1000.0 *. warm_mean) (1000.0 *. warm_min)
        (1000.0 *. replay) warm_runs speedup cold_was_cold !all_warm
        warm_faster;
      close_out oc;
      Printf.printf "wrote BENCH_serve.json\n";
      cold_was_cold && !all_warm && warm_faster)

(* ------------------------------------------------------------------ *)
(* Adaptive sequential diagnosis vs fixed-suite replay                 *)
(* ------------------------------------------------------------------ *)

(* The acceptance gate for adaptive diagnosis: replaying every dictionary
   entry through the entropy-driven sequential session must (a) isolate
   the same outcome class as the full-suite [diagnose] for every fault —
   bit-identical at zero noise — and (b) need strictly fewer reads on
   average than applying the fixed suite.  Same artifact discipline as
   the campaign bench: every field is computed this run, written to
   BENCH_diagnosis.json, read back and hard-checked. *)
let diagnosis_bench () =
  heading "Sequential diagnosis: adaptive reads vs fixed-suite replay (8x8)";
  let module Diagnosis = Fpva_sim.Diagnosis in
  let fpva = Layouts.paper_array 8 in
  let suite = Pipeline.run_exn fpva in
  let faults = Diagnosis.single_faults fpva in
  let dict = Diagnosis.build fpva ~vectors:suite.Pipeline.vectors ~faults in
  let classes = List.length (Diagnosis.equivalence_classes dict) in
  let resolution = Diagnosis.resolution dict in
  let sw, wall =
    Fpva_util.Timer.time (fun () -> Diagnosis.Sequential.sweep dict)
  in
  let mean = sw.Diagnosis.Sequential.mean_reads in
  let fixed = sw.Diagnosis.Sequential.fixed_reads in
  let ratio = mean /. Float.max (float_of_int fixed) 1e-9 in
  let agree = sw.Diagnosis.Sequential.all_agree in
  let saved = mean < float_of_int fixed in
  Printf.printf "dictionary       : %d faults, %d vectors, %d classes \
                 (resolution %.2f)\n"
    (List.length faults) suite.Pipeline.total classes resolution;
  Printf.printf
    "sequential       : %d sessions, mean %.2f reads (p95 %.1f, max %d) in \
     %.2fs\n"
    sw.Diagnosis.Sequential.sessions mean sw.Diagnosis.Sequential.p95_reads
    sw.Diagnosis.Sequential.max_session_reads wall;
  Printf.printf "fixed suite      : %d reads per session\n" fixed;
  Printf.printf
    "reads ratio      : %.2f (gate: < 1.0), outcome classes bit-identical \
     to diagnose: %b (gate: true)\n"
    ratio agree;
  if not agree then
    Printf.printf
      "ERROR: a sequential session isolated a different outcome class than \
       diagnose\n";
  if not saved then
    Printf.printf
      "ERROR: sequential mean reads %.2f not below the fixed suite's %d\n"
      mean fixed;
  let oc = open_out "BENCH_diagnosis.json" in
  Printf.fprintf oc
    "{\n\
    \  \"layout\": \"paper_array_8x8\",\n\
    \  \"vectors\": %d,\n\
    \  \"faults\": %d,\n\
    \  \"equivalence_classes\": %d,\n\
    \  \"resolution\": %.4f,\n\
    \  \"sessions\": %d,\n\
    \  \"sequential_mean_reads\": %.4f,\n\
    \  \"sequential_p95_reads\": %.1f,\n\
    \  \"sequential_max_reads\": %d,\n\
    \  \"fixed_suite_reads\": %d,\n\
    \  \"reads_ratio\": %.4f,\n\
    \  \"mean_reads_below_fixed\": %b,\n\
    \  \"outcome_classes_match\": %b\n\
     }\n"
    suite.Pipeline.total (List.length faults) classes resolution
    sw.Diagnosis.Sequential.sessions mean sw.Diagnosis.Sequential.p95_reads
    sw.Diagnosis.Sequential.max_session_reads fixed ratio saved agree;
  close_out oc;
  Printf.printf "wrote BENCH_diagnosis.json\n";
  let artifact_ok =
    let module Json = Fpva_serve.Json in
    let contents =
      let ic = open_in_bin "BENCH_diagnosis.json" in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse contents with
    | Error msg ->
      Printf.printf "ERROR: BENCH_diagnosis.json does not parse: %s\n" msg;
      false
    | Ok json ->
      let problems = ref [] in
      let need_pos_int f =
        match Json.get_int f json with
        | Some v when v > 0 -> ()
        | Some _ -> problems := (f ^ " is vacuous") :: !problems
        | None -> problems := (f ^ " missing") :: !problems
      in
      let need_pos_float f =
        match Json.get_float f json with
        | Some v when v > 0.0 -> ()
        | Some _ -> problems := (f ^ " is vacuous") :: !problems
        | None -> problems := (f ^ " missing") :: !problems
      in
      let need_true f =
        match Json.get_bool f json with
        | Some true -> ()
        | Some false -> problems := (f ^ " is false") :: !problems
        | None -> problems := (f ^ " missing") :: !problems
      in
      List.iter need_pos_int
        [ "vectors"; "faults"; "equivalence_classes"; "sessions";
          "sequential_max_reads"; "fixed_suite_reads" ];
      List.iter need_pos_float
        [ "resolution"; "sequential_mean_reads"; "sequential_p95_reads";
          "reads_ratio" ];
      List.iter need_true
        [ "mean_reads_below_fixed"; "outcome_classes_match" ];
      List.iter
        (fun p -> Printf.printf "ERROR: BENCH_diagnosis.json: %s\n" p)
        !problems;
      !problems = []
  in
  if artifact_ok then Printf.printf "BENCH_diagnosis.json self-check passed\n";
  agree && saved && artifact_ok

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  heading "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let textbook_lp =
    let module Lp = Fpva_milp.Lp in
    let lp = Lp.create Lp.Maximize in
    let x = Lp.add_var lp Lp.Continuous in
    let y = Lp.add_var lp Lp.Continuous in
    Lp.add_constr lp [ (1.0, x); (1.0, y) ] Lp.Le 4.0;
    Lp.add_constr lp [ (1.0, x); (3.0, y) ] Lp.Le 6.0;
    Lp.set_objective lp [ (3.0, x); (2.0, y) ];
    lp
  in
  let knapsack =
    let module Lp = Fpva_milp.Lp in
    let lp = Lp.create Lp.Maximize in
    let xs = Array.init 10 (fun _ -> Lp.add_var lp Lp.Binary) in
    Lp.add_constr lp
      (Array.to_list
         (Array.mapi (fun i x -> (float_of_int ((i mod 4) + 1), x)) xs))
      Lp.Le 9.0;
    Lp.set_objective lp
      (Array.to_list
         (Array.mapi (fun i x -> (float_of_int ((i mod 5) + 1), x)) xs));
    lp
  in
  let grid10 = Layouts.paper_array 10 in
  let flow_prob, _ = Flow_path.problem grid10 in
  let flow_weight =
    Array.map (fun r -> if r then 1.0 else 0.0) flow_prob.Problem.required
  in
  let cut_prob, cut_mapping =
    match Cut_set.problems grid10 with
    | spec :: _ -> spec
    | [] -> failwith "no cut problem"
  in
  let cut_weight =
    Array.mapi
      (fun de _ ->
        match Cut_set.crossed_edge_of_mapping cut_mapping de with
        | Some e when Fpva.edge_state grid10 e = Fpva.Valve -> 1.0
        | Some _ | None -> 0.0)
      cut_prob.Problem.edge_ends
  in
  let grid20 = Layouts.paper_array 20 in
  let vector20 =
    let paths, _ = Flow_path.generate grid20 in
    Test_vector.of_flow_path grid20 (List.hd paths)
  in
  let tests =
    Test.make_grouped ~name:"fpva"
      [
        Test.make ~name:"simplex/textbook"
          (Staged.stage (fun () -> ignore (Fpva_milp.Simplex.solve textbook_lp)));
        Test.make ~name:"branch-bound/knapsack10"
          (Staged.stage (fun () ->
               ignore (Fpva_milp.Branch_bound.solve knapsack)));
        Test.make ~name:"search/flow-path-10x10"
          (Staged.stage (fun () ->
               ignore (Path_search.find flow_prob ~weight:flow_weight)));
        Test.make ~name:"search/cut-path-10x10"
          (Staged.stage (fun () ->
               ignore (Path_search.find cut_prob ~weight:cut_weight)));
        Test.make ~name:"sim/pressure-bfs-spec-20x20"
          (Staged.stage (fun () ->
               ignore
                 (Graph.pressurized_sinks_spec grid20
                    ~open_edge:(fun _ -> true))));
        (let comp = Compiled.get grid20 in
         let scratch = Compiled.create_scratch comp in
         let into = Array.make (Compiled.num_ports comp) false in
         Test.make ~name:"sim/pressure-bfs-compiled-20x20"
           (Staged.stage (fun () ->
                Graph.pressurized_into comp scratch
                  ~open_valve:(fun _ -> true)
                  ~into)));
        Test.make ~name:"sim/apply-vector-20x20"
          (Staged.stage (fun () ->
               ignore
                 (Fpva_sim.Simulator.apply_vector grid20 ~faults:[] vector20)));
      ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Table.create [ ("benchmark", Table.Left); ("ns/run", Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> Printf.sprintf "%.0f" x
        | Some [] | None -> "-"
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Table.add_row table [ name; ns ])
    (List.sort compare !rows);
  Table.print table


let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "table1" :: _ -> ignore (table1 ())
  | _ :: "fig8" :: _ -> fig8 ()
  | _ :: "fig9" :: _ -> fig9 ()
  | _ :: "faults" :: rest ->
    let trials = match rest with t :: _ -> int_of_string t | [] -> 10_000 in
    faults ~trials ()
  | _ :: "ablation" :: _ -> ablation ()
  | _ :: "noise" :: _ -> ablation_noise ()
  | _ :: "extensions" :: _ -> extensions ()
  | _ :: "campaign" :: rest ->
    let trials = match rest with t :: _ -> int_of_string t | [] -> 10_000 in
    if not (campaign_bench ~trials ()) then exit 1
  | _ :: "checkpoint" :: rest ->
    let trials = match rest with t :: _ -> int_of_string t | [] -> 10_000 in
    if not (checkpoint_bench ~trials ()) then exit 1
  | _ :: "serve" :: _ -> if not (serve_bench ()) then exit 1
  | _ :: "diagnosis" :: _ -> if not (diagnosis_bench ()) then exit 1
  | _ :: "micro" :: _ -> micro ()
  | _ :: unknown :: _ ->
    Printf.eprintf
      "unknown experiment %S (try table1 | fig8 | fig9 | faults | ablation | \
       noise | extensions | campaign | checkpoint | serve | diagnosis | \
       micro)\n"
      unknown;
    exit 2
  | [ _ ] | [] ->
    ignore (table1 ());
    fig8 ();
    fig9 ();
    faults ~trials:2_000 ();
    ablation ();
    extensions ();
    ignore (campaign_bench ~trials:2_000 ());
    ignore (checkpoint_bench ~trials:2_000 ());
    ignore (serve_bench ());
    ignore (diagnosis_bench ());
    micro ()
